// ReplicatedLog: consensus as a service over the multiplexed MAC engine.
//
// PRs 1-8 ran consensus as a one-shot: one Network, one protocol instance,
// one decided value. This driver turns the same engine into a service — a
// numbered sequence of SLOT instances multiplexed over one Network (see
// "Instance multiplexing" in mac/engine.hpp), each slot deciding which
// batch of client ops commits at its position, with a deterministic
// KvStateMachine applying decided batches in slot order.
//
// Cost model (the A/B the log-service bench pins):
//   * Slot 0 and every `lease_slots`-th slot run FULL wPAXOS (paper §4.2):
//     every node proposes the slot's batch id, so validity alone forces
//     the decided value, and the decide doubles as a LEADER LEASE — the
//     max-id node won Algorithm 2's Omega election during the slot, and
//     under identity ids that winner is pinned (node n-1).
//   * The other slots ride the lease: a CommitFlood instance in which the
//     leased leader decides immediately and floods the batch id, every
//     node deciding on first receipt. One dissemination wave per slot
//     instead of a full proposer/acceptor exchange — the Lemma 4.2-style
//     amortization: coordination is paid once per lease, not once per op.
//   * Batching multiplies the win: one decided value commits `batch_size`
//     client ops, so bytes-per-op and slots-per-op both shrink.
//   With lease_slots = 1 and batch_size = 1 the same code path IS the
//   naive one-op-per-slot service, which is how the bench A/Bs them in one
//   binary.
//
// Pipelining: up to `window` slot instances are in flight concurrently —
// later slots launch mid-run (from the engine's post-event hook) as
// earlier ones decide. Decides may land out of slot order; the state
// machine still applies batches in slot order (contiguous-prefix rule).
//
// Correctness: every decided slot is judged by the per-instance oracle
// (verify::check_consensus(net, instance, inputs)) — per-slot agreement
// and validity are what make a log of consensus instances a correct log.
// If a leased slot stalls (a crashed leader floods nothing and the event
// queue drains), recovery relaunches the slot as a full wPAXOS instance —
// the slow path is always safe, the fast path is merely fast.
#pragma once

#include <cstddef>
#include <vector>

#include "core/wpaxos/wpaxos.hpp"
#include "log/kv_state_machine.hpp"
#include "log/workload.hpp"
#include "mac/engine.hpp"
#include "mac/scheduler.hpp"
#include "net/graph.hpp"

namespace amac::log {

struct LogConfig {
  /// Client ops committed per decided slot. 1 = one op per slot.
  std::size_t batch_size = 8;
  /// Max slot instances in flight concurrently (pipelining depth >= 1).
  std::size_t window = 4;
  /// Every lease_slots-th slot renews the lease with full wPAXOS; the
  /// rest ride it on the CommitFlood fast path. 1 = full wPAXOS always.
  std::size_t lease_slots = 64;
  /// Stalled-slot recovery attempts (each relaunches the undecided slots
  /// as full wPAXOS instances) before drive() gives up.
  std::size_t max_recovery_rounds = 4;
  core::wpaxos::WPaxosConfig wpaxos;  ///< config for full-paxos slots
  /// Crashes to inject (node-level, engine CrashPlan semantics). The
  /// service owns its Network, so fault tests thread crash plans through
  /// here instead of reaching into the engine.
  std::vector<mac::CrashPlan> crashes;
};

/// Everything drive() observed, for benches and tests.
struct LogServiceStats {
  std::size_t slots_total = 0;
  std::size_t slots_decided = 0;
  std::size_t slots_full_paxos = 0;  ///< lease-renewal slots (incl. slot 0)
  std::size_t slots_leased = 0;      ///< CommitFlood fast-path slots
  std::size_t slots_recovered = 0;   ///< stalled slots relaunched as wPAXOS
  std::size_t ops_applied = 0;
  /// Slots whose per-instance oracle verdict failed, or whose decided
  /// value was not the slot's batch id. Zero on every healthy run.
  std::size_t oracle_failures = 0;
  std::uint64_t payload_bytes = 0;  ///< sum of slot instances' broadcast bytes
  std::uint64_t broadcasts = 0;     ///< sum of slot instances' broadcasts
  mac::Time end_time = 0;
  bool complete = false;  ///< every slot decided and applied
  /// Per-slot decide latency in ticks (decided_at - launched_at), indexed
  /// by slot. Benches fold this into p50/p99.
  std::vector<mac::Time> decide_latency;
};

class ReplicatedLog {
 public:
  /// The log serves `workload` over `graph` with `scheduler` timing.
  /// Identity node ids are assumed (the lease pins node n-1 as leader —
  /// the winner of wPAXOS's max-id Omega election under identity ids).
  ReplicatedLog(const net::Graph& graph, mac::Scheduler& scheduler,
                const Workload& workload, LogConfig config = {});

  ReplicatedLog(const ReplicatedLog&) = delete;
  ReplicatedLog& operator=(const ReplicatedLog&) = delete;

  /// Runs the service until every slot is decided and applied, the
  /// virtual-time horizon is hit, or recovery gives up. Call once.
  const LogServiceStats& drive(mac::Time horizon);

  [[nodiscard]] const LogServiceStats& stats() const { return stats_; }
  [[nodiscard]] const KvStateMachine& state_machine() const { return kv_; }
  [[nodiscard]] const mac::Network& network() const { return net_; }

  /// The ops slot `s` commits: indices [s * batch, min((s+1) * batch, N)).
  [[nodiscard]] std::pair<std::size_t, std::size_t> batch_range(
      std::size_t slot) const;

 private:
  struct SlotRecord {
    mac::InstanceId instance = 0;
    mac::Time launched_at = 0;
    mac::Time decided_at = 0;
    bool launched = false;
    bool decided = false;
    bool full_paxos = false;
  };

  [[nodiscard]] bool lease_renewal_slot(std::size_t slot) const {
    return slot % config_.lease_slots == 0;
  }
  [[nodiscard]] mac::ProcessFactory slot_factory(std::size_t slot,
                                                 bool full_paxos) const;
  void pump(mac::Network& net);
  void on_slot_decided(std::size_t slot);
  void apply_ready_prefix();
  void launch_ready_slots();
  void recover_stalled_slots();

  const net::Graph& graph_;
  const Workload& workload_;
  LogConfig config_;
  std::size_t n_;
  NodeId leader_;
  std::size_t total_slots_;
  mac::Network net_;

  std::vector<SlotRecord> slots_;
  std::vector<std::size_t> inflight_;  ///< launched, not yet decided
  std::size_t next_launch_ = 0;
  std::size_t next_apply_ = 0;
  /// Set by the first recovery: the lease holder failed to serve a slot,
  /// so every remaining slot takes the full-wPAXOS slow path. (A richer
  /// service would re-elect a lease holder; falling back to the always-
  /// safe path keeps recovery simple and bounded.)
  bool lease_broken_ = false;
  KvStateMachine kv_;
  LogServiceStats stats_;
  bool driven_ = false;
};

}  // namespace amac::log
