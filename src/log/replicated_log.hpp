// ReplicatedLog: consensus as a service over the multiplexed MAC engine.
//
// PRs 1-8 ran consensus as a one-shot: one Network, one protocol instance,
// one decided value. This driver turns the same engine into a service — a
// numbered sequence of SLOT instances multiplexed over one Network (see
// "Instance multiplexing" in mac/engine.hpp), each slot deciding which
// batch of client ops commits at its position, with a deterministic
// KvStateMachine applying decided batches in slot order.
//
// Cost model (the A/B the log-service bench pins):
//   * Slot 0 and every `lease_slots`-th slot run FULL wPAXOS (paper §4.2)
//     as an ELECTIVE slot: node u proposes encode(slot, u) — the batch id
//     with u's own id in the low bits — so the winning proposer's identity
//     rides the decided value. The decide doubles as a LEADER LEASE held
//     by decode_leader(decision): under identity ids the max-id live node
//     wins Algorithm 2's Omega duel, so a crash-free run leases node n-1,
//     and a run that lost its leader RE-ELECTS the max-id survivor at the
//     next renewal slot.
//   * The other slots ride the lease: a CommitFlood instance in which the
//     leased leader decides immediately and floods the batch id, every
//     node deciding on first receipt. One dissemination wave per slot
//     instead of a full proposer/acceptor exchange — the Lemma 4.2-style
//     amortization: coordination is paid once per lease, not once per op.
//   * Batching multiplies the win: one decided value commits `batch_size`
//     client ops, so bytes-per-op and slots-per-op both shrink.
//   With lease_slots = 1 and batch_size = 1 the same code path IS the
//   naive one-op-per-slot service, which is how the bench A/Bs them in one
//   binary.
//
// Pipelining: up to `window` slot instances are in flight concurrently —
// later slots launch mid-run (from the engine's post-event hook) as
// earlier ones decide. Decides may land out of slot order; the state
// machine still applies batches in slot order (contiguous-prefix rule).
//
// Reads: submit_read(key) is a leader read with a read-index freshness
// bound — the read binds to the latest DECIDED slot at issue time and is
// only served once the applied prefix passes that slot, so it can never
// observe a state older than anything already decided when it was issued.
// `LogConfig::read_every` issues such reads from inside drive() at a
// deterministic per-slot cadence (benches fold the latencies into p50/p99).
//
// Correctness: every decided slot is judged by the per-instance oracle
// (verify::check_consensus(net, instance, inputs)) — per-slot agreement
// and validity are what make a log of consensus instances a correct log.
// If a leased slot stalls (a crashed leader floods nothing and the event
// queue drains), recovery relaunches the slot as a full wPAXOS instance —
// the slow path is always safe, the fast path is merely fast. The lease is
// broken only until the next renewal slot re-elects a live holder.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "core/wpaxos/wpaxos.hpp"
#include "log/kv_state_machine.hpp"
#include "log/workload.hpp"
#include "mac/engine.hpp"
#include "mac/scheduler.hpp"
#include "net/graph.hpp"

namespace amac::log {

struct LogConfig {
  /// Client ops committed per decided slot. 1 = one op per slot.
  std::size_t batch_size = 8;
  /// Max slot instances in flight concurrently (pipelining depth >= 1).
  std::size_t window = 4;
  /// Every lease_slots-th slot renews the lease with full wPAXOS; the
  /// rest ride it on the CommitFlood fast path. 1 = full wPAXOS always.
  std::size_t lease_slots = 64;
  /// Stalled-slot recovery attempts (each relaunches the undecided slots
  /// as full wPAXOS instances) before drive() gives up.
  std::size_t max_recovery_rounds = 4;
  /// 0 = no reads. Otherwise drive() issues a leader read (of the slot's
  /// last written key) every read_every-th decided slot — deterministic,
  /// so the read stream is part of the scenario, not the schedule.
  std::size_t read_every = 0;
  core::wpaxos::WPaxosConfig wpaxos;  ///< config for full-paxos slots
  /// Crashes to inject (node-level, engine CrashPlan semantics). The
  /// service owns its Network, so fault tests thread crash plans through
  /// here instead of reaching into the engine.
  std::vector<mac::CrashPlan> crashes;
};

/// One leader read with its read-index freshness bound.
struct ReadRecord {
  std::uint32_t key = 0;
  std::uint32_t value = 0;   ///< kv value at serve time (0 = never written)
  std::size_t bound = 0;     ///< applied prefix must reach this slot count
  mac::Time issued_at = 0;
  mac::Time served_at = 0;
  bool served = false;
};

/// Everything drive() observed, for benches and tests.
struct LogServiceStats {
  std::size_t slots_total = 0;
  std::size_t slots_decided = 0;
  std::size_t slots_full_paxos = 0;  ///< lease-renewal slots (incl. slot 0)
  std::size_t slots_leased = 0;      ///< CommitFlood fast-path slots
  /// Stalled slots moved to the wPAXOS slow path — counted once per slot,
  /// however many recovery rounds touched it.
  std::size_t slots_recovered = 0;
  /// Total relaunch events across all recovery rounds (diagnostic; can
  /// exceed slots_recovered only when a relaunched slot stalled AGAIN).
  std::size_t relaunches = 0;
  /// Renewal slots whose decided value elected a leader different from
  /// the one the previous lease pinned.
  std::size_t re_elections = 0;
  std::size_t ops_applied = 0;
  /// Slots whose per-instance oracle verdict failed, or whose decided
  /// value was not the slot's batch id. Zero on every healthy run.
  std::size_t oracle_failures = 0;
  std::size_t reads_issued = 0;
  std::size_t reads_served = 0;
  std::uint64_t payload_bytes = 0;  ///< sum of slot instances' broadcast bytes
  std::uint64_t broadcasts = 0;     ///< sum of slot instances' broadcasts
  mac::Time end_time = 0;
  bool complete = false;  ///< every slot decided and applied
  /// True when drive() stopped because the time budget ran out with events
  /// still pending — as opposed to quiescence (a stall), which recovery
  /// handles even when it happens exactly at the horizon tick.
  bool horizon_exhausted = false;
  NodeId leader = 0;      ///< current lease holder when drive() returned
  bool lease_ok = false;  ///< false = broken, awaiting the next renewal
  /// Per-slot decide latency in ticks (decided_at - launched_at), indexed
  /// by slot. launched_at is the slot's FIRST launch: a recovered slot's
  /// latency includes the stall it sat through. Benches fold this into
  /// p50/p99.
  std::vector<mac::Time> decide_latency;
  /// Per-slot tick of the LAST recovery relaunch (0 = never relaunched) —
  /// the separate diagnostic that keeps decide_latency honest.
  std::vector<mac::Time> relaunched_at;
  /// Serve latency (served_at - issued_at) per served read, in issue order.
  std::vector<mac::Time> read_latency;
};

class ReplicatedLog {
 public:
  /// Leader-id bits in a renewal slot's decided value (node ids up to
  /// 4095; the batch id rides above them).
  static constexpr int kLeaderBits = 12;

  /// The value node `u` proposes in renewal slot `slot`: the slot's batch
  /// id and the proposer's identity, packed so the election winner rides
  /// the decision. (+1 so decode_batch can never alias an unencoded 0.)
  [[nodiscard]] static constexpr mac::Value encode_renewal(std::size_t slot,
                                                           NodeId u) {
    return (static_cast<mac::Value>(slot + 1) << kLeaderBits) |
           static_cast<mac::Value>(u);
  }
  [[nodiscard]] static constexpr std::size_t decode_batch(mac::Value v) {
    return static_cast<std::size_t>(v >> kLeaderBits) - 1;
  }
  [[nodiscard]] static constexpr NodeId decode_leader(mac::Value v) {
    return static_cast<NodeId>(v & ((mac::Value{1} << kLeaderBits) - 1));
  }

  /// The log serves `workload` over `graph` with `scheduler` timing.
  /// Identity node ids are assumed (renewal slots elect the max live id).
  ReplicatedLog(const net::Graph& graph, mac::Scheduler& scheduler,
                const Workload& workload, LogConfig config = {});

  ReplicatedLog(const ReplicatedLog&) = delete;
  ReplicatedLog& operator=(const ReplicatedLog&) = delete;

  /// Runs the service until every slot is decided and applied, the
  /// virtual-time horizon is hit, or recovery gives up. Call once.
  const LogServiceStats& drive(mac::Time horizon);

  /// Issues a leader read of `key`, bound to the latest decided slot;
  /// served (possibly immediately) once the applied prefix passes the
  /// bound. Returns the read's index into reads().
  std::size_t submit_read(std::uint32_t key);

  [[nodiscard]] const LogServiceStats& stats() const { return stats_; }
  [[nodiscard]] const KvStateMachine& state_machine() const { return kv_; }
  [[nodiscard]] const mac::Network& network() const { return net_; }
  /// The instance that decided (or was deciding) slot `slot` — a recovered
  /// slot reports its relaunched full-paxos instance. Retired instances
  /// keep their decisions readable, so post-run oracles
  /// (verify::check_log_prefix) fold per-replica prefixes straight from
  /// network().decision(u, slot_instance(i)).
  [[nodiscard]] mac::InstanceId slot_instance(std::size_t slot) const {
    return slots_[slot].instance;
  }
  [[nodiscard]] const std::vector<ReadRecord>& reads() const {
    return reads_;
  }

  /// The ops slot `s` commits: indices [s * batch, min((s+1) * batch, N)).
  [[nodiscard]] std::pair<std::size_t, std::size_t> batch_range(
      std::size_t slot) const;

 private:
  /// How a slot instance proposes.
  enum class SlotMode {
    kElective,     ///< full wPAXOS, node u proposes encode_renewal(slot, u)
    kForcedPaxos,  ///< full wPAXOS, every node proposes the same value
    kLeased,       ///< CommitFlood under the current lease holder
  };

  struct SlotRecord {
    mac::InstanceId instance = 0;
    mac::Time launched_at = 0;    ///< FIRST launch (decide-latency base)
    mac::Time relaunched_at = 0;  ///< last recovery relaunch (diagnostic)
    mac::Time decided_at = 0;
    mac::Value sole = 0;  ///< the forced value when !elective
    /// deliveries+broadcasts snapshot from the last recovery look: a
    /// full-paxos slot is only relaunched when this did not move.
    std::uint64_t progress = 0;
    bool launched = false;
    bool decided = false;
    bool full_paxos = false;
    bool elective = false;
    bool recovered = false;        ///< already counted in slots_recovered
    bool progress_marked = false;  ///< had a recovery look already
  };

  [[nodiscard]] bool lease_renewal_slot(std::size_t slot) const {
    return slot % config_.lease_slots == 0;
  }
  [[nodiscard]] mac::ProcessFactory slot_factory(std::size_t slot,
                                                 SlotMode mode,
                                                 mac::Value forced) const;
  void pump(mac::Network& net);
  void on_slot_decided(std::size_t slot);
  void apply_ready_prefix();
  void serve_ready_reads();
  void launch_ready_slots();
  void recover_stalled_slots();

  const net::Graph& graph_;
  const Workload& workload_;
  LogConfig config_;
  std::size_t n_;
  std::size_t total_slots_;
  mac::Network net_;

  std::vector<SlotRecord> slots_;
  std::vector<std::size_t> inflight_;  ///< launched, not yet decided
  std::size_t next_launch_ = 0;
  std::size_t next_apply_ = 0;
  /// Current lease holder. Initialized optimistically to n-1 (the max-id
  /// Omega winner of a crash-free slot 0) so the first window can pipeline
  /// leased slots behind the still-deciding renewal; every renewal slot's
  /// decision re-derives it via decode_leader.
  NodeId current_leader_;
  /// Cleared by recovery (the lease holder failed to serve a slot), set
  /// again when a renewal slot elects a live holder — "broken until next
  /// renewal", not a terminal state.
  bool lease_ok_ = true;
  /// Slot count the freshest read must wait for: latest decided slot + 1.
  std::size_t read_bound_ = 0;
  /// Set when launch_ready_slots adds instances; drive() clears it before
  /// the post-run pump so recovery can tell "quiescent because stalled"
  /// from "quiescent because the final decide just launched fresh slots
  /// whose events are still pending".
  bool just_launched_ = false;
  std::vector<ReadRecord> reads_;
  std::size_t next_read_serve_ = 0;  ///< reads_[0..this) are served
  KvStateMachine kv_;
  LogServiceStats stats_;
  bool driven_ = false;
};

}  // namespace amac::log
