// Deterministic key-value state machine fed by the replicated log.
//
// Replication correctness reduces to: every replica applies the SAME ops
// in the SAME order. The fold digest pins exactly that — it mixes each
// applied (index, key, value) in application order and nothing else, so
// two services that decided their slots differently (batched vs naive,
// different windows, different lease lengths) still produce bit-equal
// digests as long as the decided log linearizes the same client stream.
#pragma once

#include <cstddef>
#include <map>

#include "log/workload.hpp"
#include "util/hash.hpp"

namespace amac::log {

class KvStateMachine {
 public:
  /// Applies one decided op. `index` is the op's global position in the
  /// client stream; ops MUST be applied in ascending index order with no
  /// gaps (the log's apply loop guarantees this; AMAC_EXPECTS pins it).
  void apply(std::size_t index, const ClientOp& op);

  [[nodiscard]] std::size_t applied() const { return applied_; }

  /// Order-sensitive fold of every applied op: the replica-equality pin.
  [[nodiscard]] std::uint64_t digest() const { return fold_.digest(); }

  /// Current value of `key` (0 if never written); table reads for tests.
  [[nodiscard]] std::uint32_t get(std::uint32_t key) const;
  [[nodiscard]] std::size_t table_size() const { return kv_.size(); }

 private:
  std::map<std::uint32_t, std::uint32_t> kv_;
  util::Hasher fold_;
  std::size_t applied_ = 0;
};

}  // namespace amac::log
