#include "log/kv_state_machine.hpp"

#include "util/assert.hpp"

namespace amac::log {

void KvStateMachine::apply(std::size_t index, const ClientOp& op) {
  AMAC_EXPECTS(index == applied_);  // in order, no gaps, no duplicates
  kv_[op.key] = op.value;
  fold_.mix_u64(index);
  fold_.mix_u64(op.key);
  fold_.mix_u64(op.value);
  ++applied_;
}

std::uint32_t KvStateMachine::get(std::uint32_t key) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? 0 : it->second;
}

}  // namespace amac::log
