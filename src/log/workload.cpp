#include "log/workload.hpp"

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace amac::log {

Workload::Workload(std::uint64_t seed, std::size_t total_ops,
                   std::uint32_t key_space)
    : seed_(seed), total_ops_(total_ops),
      key_space_(key_space == 0 ? 1 : key_space) {}

ClientOp Workload::op(std::size_t i) const {
  AMAC_EXPECTS(i < total_ops_);
  util::Hasher h;
  h.mix_u64(seed_);
  h.mix_u64(i);
  const std::uint64_t bits = h.digest();
  ClientOp op;
  op.key = static_cast<std::uint32_t>(bits % key_space_);
  op.value = static_cast<std::uint32_t>(bits >> 32);
  return op;
}

}  // namespace amac::log
