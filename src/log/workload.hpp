// Seed-deterministic client workload for the replicated log service.
//
// Op i is derived STATELESSLY from (seed, i) by one hash — no rng stream
// to advance, so any consumer (the log driver batching ops into slots, a
// state-machine replica applying a decided slot, a test regenerating a
// batch to cross-check a digest) can materialize any op in any order and
// always sees the same bytes. That statelessness is what lets the batched
// and naive log services apply the IDENTICAL op sequence and be compared
// by state-machine digest alone.
#pragma once

#include <cstddef>
#include <cstdint>

namespace amac::log {

/// One client operation: write `value` to `key`. Keys live in a bounded
/// space so replicas exercise overwrites, not just inserts.
struct ClientOp {
  std::uint32_t key = 0;
  std::uint32_t value = 0;
};

class Workload {
 public:
  /// `total_ops` ops over `key_space` distinct keys, pinned by `seed`.
  Workload(std::uint64_t seed, std::size_t total_ops,
           std::uint32_t key_space = 1024);

  /// The i-th op (i < size()), stateless and O(1).
  [[nodiscard]] ClientOp op(std::size_t i) const;

  [[nodiscard]] std::size_t size() const { return total_ops_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::size_t total_ops_;
  std::uint32_t key_space_;
};

}  // namespace amac::log
