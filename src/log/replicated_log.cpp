#include "log/replicated_log.hpp"

#include <algorithm>

#include "core/commit_flood.hpp"
#include "verify/checker.hpp"

namespace amac::log {

ReplicatedLog::ReplicatedLog(const net::Graph& graph,
                             mac::Scheduler& scheduler,
                             const Workload& workload, LogConfig config)
    : graph_(graph),
      workload_(workload),
      config_(config),
      n_(graph.node_count()),
      leader_(static_cast<NodeId>(n_ - 1)),
      total_slots_((workload.size() + config.batch_size - 1) /
                   config.batch_size),
      net_(graph, slot_factory(0, true), scheduler) {
  AMAC_EXPECTS(workload.size() > 0);
  AMAC_EXPECTS(config_.batch_size >= 1);
  AMAC_EXPECTS(config_.window >= 1);
  AMAC_EXPECTS(config_.lease_slots >= 1);
  AMAC_EXPECTS(n_ >= 2);

  for (const mac::CrashPlan& plan : config_.crashes) {
    net_.schedule_crash(plan);
  }

  slots_.resize(total_slots_);
  stats_.slots_total = total_slots_;
  stats_.decide_latency.assign(total_slots_, 0);

  // Slot 0 is instance 0 (built by the Network constructor) and always a
  // lease renewal; the rest of the initial window launches pre-run.
  slots_[0].instance = 0;
  slots_[0].launched = true;
  slots_[0].full_paxos = true;
  ++stats_.slots_full_paxos;
  inflight_.push_back(0);
  next_launch_ = 1;
  launch_ready_slots();
}

std::pair<std::size_t, std::size_t> ReplicatedLog::batch_range(
    std::size_t slot) const {
  AMAC_EXPECTS(slot < total_slots_);
  const std::size_t first = slot * config_.batch_size;
  const std::size_t last =
      std::min(first + config_.batch_size, workload_.size());
  return {first, last};
}

mac::ProcessFactory ReplicatedLog::slot_factory(std::size_t slot,
                                                bool full_paxos) const {
  // The slot's consensus value is its batch id. Full-paxos slots give
  // EVERY node that input, so validity alone forces the decided value;
  // leased slots let only the leader originate it.
  const auto value = static_cast<mac::Value>(slot);
  if (full_paxos) {
    const std::size_t n = n_;
    const auto wpaxos = config_.wpaxos;
    return [n, value, wpaxos](NodeId u) -> std::unique_ptr<mac::Process> {
      return std::make_unique<core::wpaxos::WPaxos>(u, n, value, wpaxos);
    };
  }
  const NodeId leader = leader_;
  return [leader, value](NodeId u) -> std::unique_ptr<mac::Process> {
    return std::make_unique<core::CommitFlood>(u == leader, value);
  };
}

void ReplicatedLog::launch_ready_slots() {
  while (inflight_.size() < config_.window && next_launch_ < total_slots_) {
    const std::size_t slot = next_launch_++;
    const bool full = lease_renewal_slot(slot) || lease_broken_;
    SlotRecord& rec = slots_[slot];
    rec.instance = net_.add_instance(slot_factory(slot, full));
    rec.launched = true;
    rec.launched_at = net_.now();
    rec.full_paxos = full;
    if (full) {
      ++stats_.slots_full_paxos;
    } else {
      ++stats_.slots_leased;
    }
    inflight_.push_back(slot);
  }
}

void ReplicatedLog::pump(mac::Network& net) {
  // Scan the (window-bounded) in-flight set for freshly decided slots.
  // instance_all_decided is O(1) per instance, so this is O(window) per
  // event — the service layer's constant, not a hidden O(slots).
  bool any = false;
  for (std::size_t i = 0; i < inflight_.size();) {
    const std::size_t slot = inflight_[i];
    if (net.instance_all_decided(slots_[slot].instance)) {
      inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
      on_slot_decided(slot);
      any = true;
    } else {
      ++i;
    }
  }
  if (any) {
    apply_ready_prefix();
    launch_ready_slots();
  }
}

void ReplicatedLog::on_slot_decided(std::size_t slot) {
  SlotRecord& rec = slots_[slot];
  rec.decided = true;
  rec.decided_at = net_.now();
  ++stats_.slots_decided;
  stats_.decide_latency[slot] = rec.decided_at - rec.launched_at;

  // Per-slot oracle: agreement + validity against the slot's sole
  // proposable input (its batch id). Judged before retirement out of
  // tidiness only — decisions stay readable after retire_instance.
  const std::vector<mac::Value> inputs(n_, static_cast<mac::Value>(slot));
  const auto verdict = verify::check_consensus(net_, rec.instance, inputs);
  if (!verdict.ok() ||
      verdict.decision != std::optional<mac::Value>(
                              static_cast<mac::Value>(slot))) {
    ++stats_.oracle_failures;
  }

  const mac::InstanceStats& is = net_.instance_stats(rec.instance);
  stats_.payload_bytes += is.payload_bytes;
  stats_.broadcasts += is.broadcasts;
  net_.retire_instance(rec.instance);
}

void ReplicatedLog::apply_ready_prefix() {
  // Pipelined decides can land out of slot order; the state machine only
  // ever consumes the contiguous decided prefix, so application order is
  // slot order — the log's linearization guarantee.
  while (next_apply_ < total_slots_ && slots_[next_apply_].decided) {
    const auto [first, last] = batch_range(next_apply_);
    for (std::size_t i = first; i < last; ++i) {
      kv_.apply(i, workload_.op(i));
    }
    stats_.ops_applied += last - first;
    ++next_apply_;
  }
}

void ReplicatedLog::recover_stalled_slots() {
  // A leased slot can stall for good: a crashed leader floods nothing and
  // the queue drains. Relaunch every in-flight undecided slot as a full
  // wPAXOS instance — the slow path needs no leader and decides whenever
  // a live majority can still talk. The stalled CommitFlood instance is
  // retired; any node that DID decide in it keeps that decision readable,
  // and the replacement proposes the same sole value, so agreement across
  // the retirements is by construction. Once the lease holder has failed a
  // slot it cannot be trusted with future ones either, so the remaining
  // slots all take the slow path (see lease_broken_).
  lease_broken_ = true;
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    const std::size_t slot = inflight_[i];
    SlotRecord& rec = slots_[slot];
    net_.retire_instance(rec.instance);
    rec.instance = net_.add_instance(slot_factory(slot, true));
    rec.launched_at = net_.now();
    if (!rec.full_paxos) {
      rec.full_paxos = true;
      --stats_.slots_leased;
      ++stats_.slots_full_paxos;
    }
    ++stats_.slots_recovered;
  }
}

const LogServiceStats& ReplicatedLog::drive(mac::Time horizon) {
  AMAC_EXPECTS(!driven_);  // one service run per ReplicatedLog
  driven_ = true;
  net_.set_post_event_hook([this](mac::Network& net) { pump(net); });

  std::size_t recovery_rounds = 0;
  for (;;) {
    const auto result = net_.run(mac::StopWhen::kQuiescent, horizon);
    pump(net_);  // a final event can decide the last slot
    stats_.end_time = net_.now();
    if (next_apply_ == total_slots_) {
      stats_.complete = true;
      break;
    }
    // Quiescent with undecided slots = stalled (e.g. crashed leader).
    // Horizon exhaustion is terminal either way.
    if (!result.condition_met || net_.now() >= horizon) break;
    if (recovery_rounds++ >= config_.max_recovery_rounds) break;
    recover_stalled_slots();
  }
  return stats_;
}

}  // namespace amac::log
