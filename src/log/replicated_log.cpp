#include "log/replicated_log.hpp"

#include <algorithm>

#include "core/commit_flood.hpp"
#include "verify/checker.hpp"

namespace amac::log {

ReplicatedLog::ReplicatedLog(const net::Graph& graph,
                             mac::Scheduler& scheduler,
                             const Workload& workload, LogConfig config)
    : graph_(graph),
      workload_(workload),
      config_(config),
      n_(graph.node_count()),
      total_slots_((workload.size() + config.batch_size - 1) /
                   config.batch_size),
      net_(graph, slot_factory(0, SlotMode::kElective, 0), scheduler),
      current_leader_(static_cast<NodeId>(n_ - 1)) {
  AMAC_EXPECTS(workload.size() > 0);
  AMAC_EXPECTS(config_.batch_size >= 1);
  AMAC_EXPECTS(config_.window >= 1);
  AMAC_EXPECTS(config_.lease_slots >= 1);
  AMAC_EXPECTS(n_ >= 2);
  // encode_renewal packs (batch id, proposer id) into one mac::Value.
  AMAC_EXPECTS(n_ <= (std::size_t{1} << kLeaderBits));
  AMAC_EXPECTS(total_slots_ <
               static_cast<std::size_t>(
                   std::numeric_limits<mac::Value>::max() >> kLeaderBits));

  for (const mac::CrashPlan& plan : config_.crashes) {
    net_.schedule_crash(plan);
  }

  slots_.resize(total_slots_);
  stats_.slots_total = total_slots_;
  stats_.decide_latency.assign(total_slots_, 0);
  stats_.relaunched_at.assign(total_slots_, 0);
  stats_.leader = current_leader_;
  stats_.lease_ok = true;

  // Slot 0 is instance 0 (built by the Network constructor) and always an
  // elective lease renewal; the rest of the initial window launches
  // pre-run.
  slots_[0].instance = 0;
  slots_[0].launched = true;
  slots_[0].full_paxos = true;
  slots_[0].elective = true;
  ++stats_.slots_full_paxos;
  inflight_.push_back(0);
  next_launch_ = 1;
  launch_ready_slots();
}

std::pair<std::size_t, std::size_t> ReplicatedLog::batch_range(
    std::size_t slot) const {
  AMAC_EXPECTS(slot < total_slots_);
  const std::size_t first = slot * config_.batch_size;
  const std::size_t last =
      std::min(first + config_.batch_size, workload_.size());
  return {first, last};
}

mac::ProcessFactory ReplicatedLog::slot_factory(std::size_t slot,
                                                SlotMode mode,
                                                mac::Value forced) const {
  switch (mode) {
    case SlotMode::kElective: {
      // Renewal slot: node u proposes encode_renewal(slot, u), so the
      // winning proposer's identity rides the decided value — the slot IS
      // the election, and validity guarantees the decoded leader proposed.
      const std::size_t n = n_;
      const auto wpaxos = config_.wpaxos;
      return [slot, n, wpaxos](NodeId u) -> std::unique_ptr<mac::Process> {
        return std::make_unique<core::wpaxos::WPaxos>(
            u, n, encode_renewal(slot, u), wpaxos);
      };
    }
    case SlotMode::kForcedPaxos: {
      // Every node proposes the same value, so validity alone forces the
      // decision — used for slow-path slots while the lease is broken and
      // for recovery relaunches that must re-decide a carried-over value.
      const std::size_t n = n_;
      const auto wpaxos = config_.wpaxos;
      return [n, forced, wpaxos](NodeId u) -> std::unique_ptr<mac::Process> {
        return std::make_unique<core::wpaxos::WPaxos>(u, n, forced, wpaxos);
      };
    }
    case SlotMode::kLeased:
      break;
  }
  const NodeId leader = current_leader_;
  const auto value = static_cast<mac::Value>(slot);
  return [leader, value](NodeId u) -> std::unique_ptr<mac::Process> {
    return std::make_unique<core::CommitFlood>(u == leader, value);
  };
}

void ReplicatedLog::launch_ready_slots() {
  while (inflight_.size() < config_.window && next_launch_ < total_slots_) {
    const std::size_t slot = next_launch_++;
    const bool renewal = lease_renewal_slot(slot);
    const SlotMode mode = renewal      ? SlotMode::kElective
                          : lease_ok_ ? SlotMode::kLeased
                                      : SlotMode::kForcedPaxos;
    SlotRecord& rec = slots_[slot];
    rec.sole = static_cast<mac::Value>(slot);
    rec.elective = renewal;
    rec.instance = net_.add_instance(slot_factory(slot, mode, rec.sole));
    rec.launched = true;
    rec.launched_at = net_.now();
    rec.full_paxos = mode != SlotMode::kLeased;
    if (rec.full_paxos) {
      ++stats_.slots_full_paxos;
    } else {
      ++stats_.slots_leased;
    }
    inflight_.push_back(slot);
    just_launched_ = true;
  }
}

void ReplicatedLog::pump(mac::Network& net) {
  // Scan the (window-bounded) in-flight set for freshly decided slots.
  // instance_all_decided is O(1) per instance, so this is O(window) per
  // event — the service layer's constant, not a hidden O(slots).
  bool any = false;
  for (std::size_t i = 0; i < inflight_.size();) {
    const std::size_t slot = inflight_[i];
    if (net.instance_all_decided(slots_[slot].instance)) {
      inflight_.erase(inflight_.begin() + static_cast<std::ptrdiff_t>(i));
      on_slot_decided(slot);
      any = true;
    } else {
      ++i;
    }
  }
  if (any) {
    apply_ready_prefix();
    serve_ready_reads();
    launch_ready_slots();
  }
}

void ReplicatedLog::on_slot_decided(std::size_t slot) {
  SlotRecord& rec = slots_[slot];
  rec.decided = true;
  rec.decided_at = net_.now();
  ++stats_.slots_decided;
  // Latency is measured from the slot's FIRST launch: a recovered slot's
  // stall is part of its decide latency (relaunched_at keeps the relaunch
  // tick as a separate diagnostic).
  stats_.decide_latency[slot] = rec.decided_at - rec.launched_at;
  read_bound_ = std::max(read_bound_, slot + 1);

  // Per-slot oracle: agreement + validity against the slot's proposable
  // inputs. Judged before retirement out of tidiness only — decisions
  // stay readable after retire_instance.
  std::vector<mac::Value> inputs(n_);
  for (std::size_t u = 0; u < n_; ++u) {
    inputs[u] = rec.elective ? encode_renewal(slot, static_cast<NodeId>(u))
                             : rec.sole;
  }
  const auto verdict = verify::check_consensus(net_, rec.instance, inputs);
  bool value_ok = false;
  if (verdict.decision.has_value()) {
    value_ok = rec.elective ? decode_batch(*verdict.decision) == slot
                            : *verdict.decision == rec.sole;
  }
  if (!verdict.ok() || !value_ok) {
    ++stats_.oracle_failures;
  }

  if (rec.elective && verdict.decision.has_value()) {
    // The decided renewal value names the new lease holder. A value
    // carried across a recovery relaunch can still name a crashed winner;
    // leave the lease broken then and let the next renewal re-elect.
    const NodeId winner = decode_leader(*verdict.decision);
    if (winner < n_ && !net_.crashed(winner)) {
      if (winner != current_leader_) {
        ++stats_.re_elections;
      }
      current_leader_ = winner;
      lease_ok_ = true;
      stats_.leader = current_leader_;
      stats_.lease_ok = true;
    }
  }

  if (config_.read_every != 0 && slot % config_.read_every == 0) {
    // Deterministic read stream: the slot's last written key, bound to
    // the freshest decided slot (which includes this one).
    const auto [first, last] = batch_range(slot);
    submit_read(workload_.op(last - 1).key);
  }

  const mac::InstanceStats& is = net_.instance_stats(rec.instance);
  stats_.payload_bytes += is.payload_bytes;
  stats_.broadcasts += is.broadcasts;
  net_.retire_instance(rec.instance);
}

void ReplicatedLog::apply_ready_prefix() {
  // Pipelined decides can land out of slot order; the state machine only
  // ever consumes the contiguous decided prefix, so application order is
  // slot order — the log's linearization guarantee.
  while (next_apply_ < total_slots_ && slots_[next_apply_].decided) {
    const auto [first, last] = batch_range(next_apply_);
    for (std::size_t i = first; i < last; ++i) {
      kv_.apply(i, workload_.op(i));
    }
    stats_.ops_applied += last - first;
    ++next_apply_;
  }
}

std::size_t ReplicatedLog::submit_read(std::uint32_t key) {
  ReadRecord r;
  r.key = key;
  r.bound = read_bound_;
  r.issued_at = net_.now();
  reads_.push_back(r);
  ++stats_.reads_issued;
  serve_ready_reads();
  return reads_.size() - 1;
}

void ReplicatedLog::serve_ready_reads() {
  // read_bound_ is monotone, so reads serve in issue order: the first
  // unserved read has the smallest freshness bound.
  while (next_read_serve_ < reads_.size()) {
    ReadRecord& r = reads_[next_read_serve_];
    if (r.bound > next_apply_) break;  // bound not yet in the applied prefix
    r.value = kv_.get(r.key);
    r.served_at = net_.now();
    r.served = true;
    ++stats_.reads_served;
    stats_.read_latency.push_back(r.served_at - r.issued_at);
    ++next_read_serve_;
  }
}

void ReplicatedLog::recover_stalled_slots() {
  // A leased slot can stall for good: a crashed leader floods nothing and
  // the queue drains. Relaunch stalled in-flight slots as full wPAXOS —
  // the slow path needs no leader and decides whenever a live majority can
  // still talk. The lease is broken from here until the next renewal slot
  // elects a live holder; slots launched in between take the slow path.
  lease_ok_ = false;
  stats_.lease_ok = false;
  for (const std::size_t slot : inflight_) {
    SlotRecord& rec = slots_[slot];
    if (rec.full_paxos) {
      // Already on the slow path. Relaunching would discard its partial
      // wPAXOS progress, so only relaunch a provably stalled instance: a
      // second recovery look with zero traffic since the first.
      const mac::InstanceStats& is = net_.instance_stats(rec.instance);
      const std::uint64_t progress = is.deliveries + is.broadcasts;
      if (!rec.progress_marked || progress != rec.progress) {
        rec.progress_marked = true;
        rec.progress = progress;
        continue;
      }
    }
    // Carry any decision out of the old instance: nodes that decided there
    // keep those decisions readable, so the replacement proposes exactly
    // that value and agreement across the retirement holds by
    // construction. An undecided elective slot relaunches electively —
    // the re-run election is among the live nodes.
    mac::Value forced = rec.sole;
    bool have_decision = false;
    for (std::size_t u = 0; u < n_; ++u) {
      const mac::Decision& d =
          net_.decision(static_cast<NodeId>(u), rec.instance);
      if (d.decided) {
        forced = d.value;
        have_decision = true;
        break;
      }
    }
    net_.retire_instance(rec.instance);
    const SlotMode mode = (rec.elective && !have_decision)
                              ? SlotMode::kElective
                              : SlotMode::kForcedPaxos;
    rec.instance = net_.add_instance(slot_factory(slot, mode, forced));
    if (!rec.elective) {
      rec.sole = forced;
    }
    rec.relaunched_at = net_.now();
    stats_.relaunched_at[slot] = rec.relaunched_at;
    rec.progress_marked = false;
    rec.progress = 0;
    if (!rec.full_paxos) {
      rec.full_paxos = true;
      --stats_.slots_leased;
      ++stats_.slots_full_paxos;
    }
    if (!rec.recovered) {
      rec.recovered = true;
      ++stats_.slots_recovered;
    }
    ++stats_.relaunches;
  }
}

const LogServiceStats& ReplicatedLog::drive(mac::Time horizon) {
  AMAC_EXPECTS(!driven_);  // one service run per ReplicatedLog
  driven_ = true;
  net_.set_post_event_hook([this](mac::Network& net) { pump(net); });

  std::size_t recovery_rounds = 0;
  for (;;) {
    const auto result = net_.run(mac::StopWhen::kQuiescent, horizon);
    just_launched_ = false;
    pump(net_);  // a final event can decide the last slot
    stats_.end_time = net_.now();
    if (next_apply_ == total_slots_) {
      stats_.complete = true;
      break;
    }
    if (!result.condition_met) {
      // Events were still pending when the budget ran out: the horizon,
      // not a stall, was binding — recovery cannot help.
      stats_.horizon_exhausted = true;
      break;
    }
    // Quiescent with undecided slots — even exactly at the horizon tick,
    // the event queue (not the budget) was the binding constraint. If the
    // final pump just launched fresh instances their events are merely
    // pending, not stalled: keep running without burning a recovery round.
    if (just_launched_) continue;
    if (recovery_rounds++ >= config_.max_recovery_rounds) break;
    recover_stalled_slots();
  }
  return stats_;
}

}  // namespace amac::log
